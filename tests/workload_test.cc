#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "roadnet/builder.h"
#include "roadnet/nearest_node.h"
#include "roadnet/oracle.h"
#include "common/csv.h"
#include "workload/generator.h"
#include "workload/io.h"

namespace auctionride {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GridNetworkOptions options;
    options.columns = 20;
    options.rows = 20;
    options.spacing_m = 800;
    options.seed = 5;
    net_ = BuildGridNetwork(options);
    oracle_ = std::make_unique<DistanceOracle>(
        &net_, DistanceOracle::Backend::kContractionHierarchy);
    nearest_ = std::make_unique<NearestNodeIndex>(&net_, 800);
  }

  RoadNetwork net_;
  std::unique_ptr<DistanceOracle> oracle_;
  std::unique_ptr<NearestNodeIndex> nearest_;
};

TEST_F(WorkloadTest, GeneratesRequestedCounts) {
  WorkloadOptions options;
  options.num_orders = 120;
  options.num_vehicles = 80;
  const Workload w = GenerateWorkload(options, *oracle_, *nearest_);
  EXPECT_EQ(w.orders.size(), 120u);
  EXPECT_EQ(w.vehicles.size(), 80u);
}

TEST_F(WorkloadTest, OrdersAreSortedRenumberedAndValid) {
  WorkloadOptions options;
  options.num_orders = 150;
  options.num_vehicles = 10;
  options.gamma = 1.5;
  const Workload w = GenerateWorkload(options, *oracle_, *nearest_);
  Seconds prev_time;
  for (std::size_t j = 0; j < w.orders.size(); ++j) {
    const Order& o = w.orders[j];
    EXPECT_EQ(o.id, static_cast<OrderId>(j));
    EXPECT_GE(o.issue_time_s, prev_time);
    prev_time = o.issue_time_s;
    EXPECT_LE(o.issue_time_s, options.duration_s);
    EXPECT_NE(o.origin, o.destination);
    EXPECT_GE(o.shortest_distance_m, Meters(options.min_trip_m));
    EXPECT_NEAR(o.shortest_time_s.value(),
                (o.shortest_distance_m / oracle_->speed_mps()).value(), 1e-9);
    // θ = (γ−1)·t(s,e)
    EXPECT_NEAR(o.max_wasted_time_s.value(), 0.5 * o.shortest_time_s.value(),
                1e-9);
    EXPECT_GT(o.valuation, Money(0));
    EXPECT_EQ(o.bid, o.valuation);  // truthful
  }
}

TEST_F(WorkloadTest, ValuationTracksTripLength) {
  WorkloadOptions options;
  options.num_orders = 300;
  options.num_vehicles = 1;
  options.price_noise_stddev = 0;
  const Workload w = GenerateWorkload(options, *oracle_, *nearest_);
  for (const Order& o : w.orders) {
    EXPECT_NEAR(o.valuation.value(),
                options.base_fare.value() +
                    options.per_km_rate * o.shortest_distance_m.value() /
                        1000.0,
                1e-9);
  }
}

TEST_F(WorkloadTest, DeterministicInSeed) {
  WorkloadOptions options;
  options.num_orders = 50;
  options.num_vehicles = 30;
  options.seed = 77;
  const Workload a = GenerateWorkload(options, *oracle_, *nearest_);
  const Workload b = GenerateWorkload(options, *oracle_, *nearest_);
  ASSERT_EQ(a.orders.size(), b.orders.size());
  for (std::size_t j = 0; j < a.orders.size(); ++j) {
    EXPECT_EQ(a.orders[j].origin, b.orders[j].origin);
    EXPECT_EQ(a.orders[j].destination, b.orders[j].destination);
    EXPECT_EQ(a.orders[j].bid, b.orders[j].bid);
    EXPECT_EQ(a.orders[j].issue_time_s, b.orders[j].issue_time_s);
  }
  for (std::size_t i = 0; i < a.vehicles.size(); ++i) {
    EXPECT_EQ(a.vehicles[i].vehicle.next_node,
              b.vehicles[i].vehicle.next_node);
  }
}

TEST_F(WorkloadTest, SeedsProduceDifferentWorkloads) {
  WorkloadOptions options;
  options.num_orders = 50;
  options.num_vehicles = 5;
  options.seed = 1;
  const Workload a = GenerateWorkload(options, *oracle_, *nearest_);
  options.seed = 2;
  const Workload b = GenerateWorkload(options, *oracle_, *nearest_);
  int differing = 0;
  for (std::size_t j = 0; j < a.orders.size(); ++j) {
    if (a.orders[j].origin != b.orders[j].origin) ++differing;
  }
  EXPECT_GT(differing, 10);
}

TEST_F(WorkloadTest, SingleRoundIssuesEverythingAtTimeZero) {
  WorkloadOptions options;
  options.num_orders = 40;
  options.num_vehicles = 40;
  const Workload w = GenerateSingleRound(options, *oracle_, *nearest_);
  for (const Order& o : w.orders) {
    EXPECT_EQ(o.issue_time_s, Seconds(0));
  }
  for (const VehicleSpawn& v : w.vehicles) {
    EXPECT_EQ(v.online_s, Seconds(0));
    EXPECT_TRUE(v.vehicle.plan.empty());
  }
}

TEST_F(WorkloadTest, VehiclesSpawnOnNetworkNodes) {
  WorkloadOptions options;
  options.num_orders = 1;
  options.num_vehicles = 60;
  const Workload w = GenerateWorkload(options, *oracle_, *nearest_);
  for (const VehicleSpawn& v : w.vehicles) {
    EXPECT_GE(v.vehicle.next_node, 0);
    EXPECT_LT(v.vehicle.next_node, net_.num_nodes());
    EXPECT_EQ(v.vehicle.capacity, kDefaultCapacity);
    EXPECT_GT(v.offline_s, options.duration_s);
  }
}

TEST_F(WorkloadTest, CsvRoundTripPreservesEverything) {
  WorkloadOptions options;
  options.num_orders = 40;
  options.num_vehicles = 25;
  const Workload original = GenerateWorkload(options, *oracle_, *nearest_);
  const std::string path = testing::TempDir() + "/workload.csv";
  ASSERT_TRUE(SaveWorkloadCsv(original, path).ok());

  StatusOr<Workload> loaded = LoadWorkloadCsv(path, net_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->orders.size(), original.orders.size());
  ASSERT_EQ(loaded->vehicles.size(), original.vehicles.size());
  for (std::size_t j = 0; j < original.orders.size(); ++j) {
    const Order& a = original.orders[j];
    const Order& b = loaded->orders[j];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.origin, b.origin);
    EXPECT_EQ(a.destination, b.destination);
    EXPECT_NEAR(a.issue_time_s.value(), b.issue_time_s.value(), 1e-5);
    EXPECT_NEAR(a.bid.value(), b.bid.value(), 1e-5);
    EXPECT_NEAR(a.max_wasted_time_s.value(), b.max_wasted_time_s.value(),
                1e-5);
  }
  for (std::size_t i = 0; i < original.vehicles.size(); ++i) {
    EXPECT_EQ(original.vehicles[i].vehicle.next_node,
              loaded->vehicles[i].vehicle.next_node);
    EXPECT_EQ(original.vehicles[i].vehicle.capacity,
              loaded->vehicles[i].vehicle.capacity);
  }
}

TEST_F(WorkloadTest, LoadRejectsOutOfRangeNodes) {
  const std::string path = testing::TempDir() + "/bad_workload.csv";
  {
    StatusOr<CsvWriter> writer = CsvWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    writer->WriteRow({"order", "0", "999999", "1", "0", "100", "10", "5",
                      "20", "20"});
    ASSERT_TRUE(writer->Close().ok());
  }
  StatusOr<Workload> loaded = LoadWorkloadCsv(path, net_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange);
}

TEST_F(WorkloadTest, LoadRejectsMalformedRecords) {
  const std::string path = testing::TempDir() + "/short_workload.csv";
  {
    StatusOr<CsvWriter> writer = CsvWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    writer->WriteRow({"vehicle", "0", "1"});  // too few fields
    ASSERT_TRUE(writer->Close().ok());
  }
  EXPECT_FALSE(LoadWorkloadCsv(path, net_).ok());
}

// Writes `rows` to a scratch CSV and loads it, returning the status.
Status LoadRows(const RoadNetwork& net,
                const std::vector<std::vector<std::string>>& rows,
                const std::string& tag) {
  const std::string path = testing::TempDir() + "/" + tag + ".csv";
  StatusOr<CsvWriter> writer = CsvWriter::Open(path);
  if (!writer.ok()) return writer.status();
  for (const std::vector<std::string>& row : rows) writer->WriteRow(row);
  const Status closed = writer->Close();
  if (!closed.ok()) return closed;
  return LoadWorkloadCsv(path, net).status();
}

TEST_F(WorkloadTest, LoadRejectsNonFiniteOrderFields) {
  // strtod accepts "nan" and "inf"; the loader must not. Exercise every
  // floating-point order column, each with a message naming the field.
  const struct {
    int column;
    const char* field;
  } cases[] = {{4, "issue_time_s"}, {5, "shortest_distance_m"},
               {6, "shortest_time_s"}, {7, "max_wasted_time_s"},
               {8, "valuation"}, {9, "bid"}};
  for (const char* poison : {"nan", "inf", "-inf"}) {
    for (const auto& c : cases) {
      std::vector<std::string> row = {"order", "0", "1",  "2",  "0",
                                      "100",   "10", "5", "20", "20"};
      row[static_cast<std::size_t>(c.column)] = poison;
      const Status status = LoadRows(net_, {row}, "nonfinite_order");
      ASSERT_EQ(status.code(), StatusCode::kInvalidArgument)
          << c.field << " = " << poison;
      EXPECT_NE(status.message().find(c.field), std::string::npos)
          << status.message();
      EXPECT_NE(status.message().find("must be finite"), std::string::npos)
          << status.message();
    }
  }
}

TEST_F(WorkloadTest, LoadRejectsNonNumericFields) {
  const Status bad_bid = LoadRows(
      net_,
      {{"order", "0", "1", "2", "0", "100", "10", "5", "20", "cheap"}},
      "bad_bid");
  ASSERT_EQ(bad_bid.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_bid.message().find("bid 'cheap' is not a number"),
            std::string::npos)
      << bad_bid.message();

  const Status bad_id =
      LoadRows(net_, {{"vehicle", "v7", "1", "4", "0", "1800"}}, "bad_vid");
  ASSERT_EQ(bad_id.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_id.message().find("vehicle id 'v7' is not an integer"),
            std::string::npos)
      << bad_id.message();
}

TEST_F(WorkloadTest, LoadRejectsNonFiniteVehicleTimes) {
  for (int column : {4, 5}) {
    std::vector<std::string> row = {"vehicle", "0", "1", "4", "0", "1800"};
    row[static_cast<std::size_t>(column)] = "inf";
    const Status status = LoadRows(net_, {row}, "nonfinite_vehicle");
    ASSERT_EQ(status.code(), StatusCode::kInvalidArgument) << column;
    EXPECT_NE(status.message().find("must be finite"), std::string::npos)
        << status.message();
  }
}

TEST_F(WorkloadTest, LoadRejectsNonPositiveCapacity) {
  for (const char* capacity : {"0", "-3"}) {
    const Status status = LoadRows(
        net_, {{"vehicle", "0", "1", capacity, "0", "1800"}}, "bad_capacity");
    ASSERT_EQ(status.code(), StatusCode::kInvalidArgument) << capacity;
    EXPECT_NE(status.message().find("capacity must be positive"),
              std::string::npos)
        << status.message();
  }
}

TEST_F(WorkloadTest, LoadRejectsDuplicateOrderIds) {
  const Status status = LoadRows(
      net_,
      {{"order", "3", "1", "2", "0", "100", "10", "5", "20", "20"},
       {"order", "3", "5", "6", "10", "200", "20", "10", "30", "30"}},
      "dup_order");
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("duplicate order id 3"), std::string::npos)
      << status.message();
}

TEST_F(WorkloadTest, LoadRejectsDuplicateVehicleIds) {
  const Status status = LoadRows(net_,
                                 {{"vehicle", "9", "1", "4", "0", "1800"},
                                  {"vehicle", "9", "2", "4", "0", "1800"}},
                                 "dup_vehicle");
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("duplicate vehicle id 9"),
            std::string::npos)
      << status.message();
}

TEST_F(WorkloadTest, LoadRejectsOfflineBeforeOnline) {
  const Status status = LoadRows(
      net_, {{"vehicle", "0", "1", "4", "600", "300"}}, "offline_early");
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("precedes online_s"), std::string::npos)
      << status.message();
}

}  // namespace
}  // namespace auctionride
