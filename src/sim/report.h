// Reporting helpers for simulation results: console summaries and CSV
// exports (per-round series + aggregate), so experiment outputs can be
// plotted or diffed outside the binary.

#ifndef AUCTIONRIDE_SIM_REPORT_H_
#define AUCTIONRIDE_SIM_REPORT_H_

#include <string>

#include "common/status.h"
#include "sim/simulator.h"

namespace auctionride {

/// Multi-line human-readable summary of a simulation result.
std::string FormatSummary(const SimResult& result);

/// Writes one row per round: time_s, pending, online, dispatched,
/// round_utility, dispatch_seconds, pricing_seconds (with a header row).
Status WriteRoundsCsv(const SimResult& result, const std::string& path);

/// Writes a two-row (header + values) CSV of the aggregate metrics.
Status WriteSummaryCsv(const SimResult& result, const std::string& path);

/// Writes the order lifecycle trace: time_s, order, event, vehicle.
Status WriteEventsCsv(const SimResult& result, const std::string& path);

}  // namespace auctionride

#endif  // AUCTIONRIDE_SIM_REPORT_H_
