// Parameter-sweep CLI: run the round-based simulation across a sweep of one
// control variable (the paper's Table II knobs) for both mechanisms and emit
// a CSV — the workhorse for producing custom figures beyond the bundled
// benches.
//
// Usage:
//   sweep_cli --var alpha --values 2.5,3.0,3.5,4.0
//             --orders 500 --vehicles 700 --out /tmp/sweep.csv
//   --var one of: alpha | gamma | trnd | cr (cr enables pricing)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/csv.h"
#include "roadnet/builder.h"
#include "roadnet/nearest_node.h"
#include "sim/simulator.h"
#include "workload/generator.h"

using namespace auctionride;

namespace {

std::vector<double> ParseValues(const std::string& csv) {
  std::vector<double> values;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string token =
        csv.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!token.empty()) values.push_back(std::atof(token.c_str()));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string var = "alpha";
  std::string values_arg = "2.5,3.0,3.5,4.0";
  std::string out_path = "/tmp/auctionride_sweep.csv";
  int num_orders = 400;
  int num_vehicles = 560;
  uint64_t seed = 42;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--var") var = argv[i + 1];
    if (flag == "--values") values_arg = argv[i + 1];
    if (flag == "--orders") num_orders = std::atoi(argv[i + 1]);
    if (flag == "--vehicles") num_vehicles = std::atoi(argv[i + 1]);
    if (flag == "--seed") seed = std::strtoull(argv[i + 1], nullptr, 10);
    if (flag == "--out") out_path = argv[i + 1];
  }
  const std::vector<double> values = ParseValues(values_arg);
  if (values.empty() || (var != "alpha" && var != "gamma" && var != "trnd" &&
                         var != "cr")) {
    std::fprintf(stderr,
                 "usage: sweep_cli --var alpha|gamma|trnd|cr --values a,b,c "
                 "[--orders N] [--vehicles N] [--seed S] [--out path]\n");
    return 2;
  }

  std::printf("building network and oracle...\n");
  RoadNetwork network = BuildBeijingLikeNetwork(/*seed=*/7);
  DistanceOracle oracle(&network,
                        DistanceOracle::Backend::kContractionHierarchy);
  NearestNodeIndex nearest(&network, 400);

  StatusOr<CsvWriter> writer = CsvWriter::Open(out_path);
  if (!writer.ok()) {
    std::fprintf(stderr, "%s\n", writer.status().ToString().c_str());
    return 1;
  }
  writer->WriteRow({"var", "value", "mechanism", "u_auc", "u_plf",
                    "dispatch_rate", "mean_round_s", "max_round_s"});

  for (double value : values) {
    for (MechanismKind kind :
         {MechanismKind::kGreedy, MechanismKind::kRank}) {
      WorkloadOptions wl;
      wl.seed = seed;
      wl.num_orders = num_orders;
      wl.num_vehicles = num_vehicles;
      wl.gamma = var == "gamma" ? value : 1.5;

      SimOptions options;
      options.mechanism = kind;
      options.auction.alpha_d_per_km = var == "alpha" ? value : 3.0;
      options.auction.beta_d_per_km = options.auction.alpha_d_per_km;
      options.round_duration_s = Seconds(var == "trnd" ? value : 10.0);
      if (var == "cr") {
        options.auction.charge_ratio = value;
        options.run_pricing = true;
      }

      Workload workload = GenerateWorkload(wl, oracle, nearest);
      Simulator simulator(&oracle, std::move(workload), options);
      const SimResult result = simulator.Run();
      std::printf("%s=%.2f %-12s U_auc=%9.2f U_plf=%9.2f rate=%.3f\n",
                  var.c_str(), value,
                  std::string(MechanismName(kind)).c_str(),
                  result.total_utility.value(),
                  result.platform_utility.value(),
                  result.dispatch_rate());
      writer->WriteRow({var, Num(value),
                        std::string(MechanismName(kind)),
                        Num(result.total_utility.value()),
                        Num(result.platform_utility.value()),
                        Num(result.dispatch_rate()),
                        Num(result.mean_dispatch_seconds.value()),
                        Num(result.max_dispatch_seconds.value())});
    }
  }
  const Status closed = writer->Close();
  if (!closed.ok()) {
    std::fprintf(stderr, "%s\n", closed.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
