// Figure 5 — effect of the per-km travel cost α_d ∈ {2.5, 3.0, 3.5, 4.0}
// yuan/km on utility (5a) and running time (5b).
//
// Paper shape: Rank is superior to Greedy except at α_d = 2.5 where the two
// are close; Rank stays robust as α_d grows while Greedy collapses (few
// solo rides stay profitable). Running times of both methods grow with α_d
// because fewer dispatches leave more pended orders per round.

#include "bench_common.h"

namespace auctionride {
namespace bench {
namespace {

void BM_Fig5(benchmark::State& state) {
  const auto mechanism = static_cast<MechanismKind>(state.range(0));
  const double alpha = static_cast<double>(state.range(1)) / 10.0;
  SimResult result;
  for (auto _ : state) {
    SimOptions options;
    options.auction = PaperAuction();
    options.auction.alpha_d_per_km = alpha;
    options.auction.beta_d_per_km = alpha;
    result = RunSim(mechanism, PaperWorkload(), options);
  }
  ReportSim(state, result);
}

}  // namespace
}  // namespace bench
}  // namespace auctionride

using auctionride::MechanismKind;
using auctionride::bench::BM_Fig5;

BENCHMARK(BM_Fig5)
    ->ArgsProduct({{static_cast<long>(MechanismKind::kGreedy),
                    static_cast<long>(MechanismKind::kRank)},
                   {25, 30, 35, 40}})  // α_d x 10
    ->ArgNames({"mech", "alpha_x10"})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

int main(int argc, char** argv) {
  return auctionride::bench::BenchMain(
      "fig5_alpha",
      "Figure 5: effect of alpha_d",
      "mech 0 = Greedy, mech 1 = Rank; alpha_d = alpha_x10 / 10 yuan/km", argc, argv);
}
