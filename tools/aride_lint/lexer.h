// Minimal C++ lexer for aride-lint (tools/aride_lint). Produces a flat
// token stream with physical line numbers, strips comments and string
// literals (so rule matching never fires inside them), and records
// NOLINT-ARIDE suppression comments per line.
//
// This is deliberately not a preprocessor: macros are not expanded and
// conditional compilation branches are all lexed. Rules that need
// directive structure (#include, include guards) reconstruct it from the
// '#' tokens, which the lexer passes through.

#ifndef AUCTIONRIDE_TOOLS_ARIDE_LINT_LEXER_H_
#define AUCTIONRIDE_TOOLS_ARIDE_LINT_LEXER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace aride_lint {

enum class TokKind {
  kIdentifier,  // identifiers and keywords (no keyword table needed)
  kNumber,      // pp-number: 1, 0x1f, 1.5e-3, 1'000, 1.0f
  kString,      // "..." including raw strings; text is the full literal
  kChar,        // '...'
  kPunct,       // operators & punctuation, maximal munch ("<<=", "==", ...)
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based physical line of the token's first character
};

struct LexedFile {
  std::vector<Token> tokens;
  // Rules suppressed per line, from "// NOLINT-ARIDE(rule-a,rule-b)" (same
  // line) and "// NOLINTNEXTLINE-ARIDE(...)" (following line). The
  // parenthesized rule list is mandatory — a marker without one is treated
  // as prose. "NOLINT-ARIDE(*)" suppresses every rule; the wildcard is
  // recorded as the sentinel "*".
  std::map<int, std::set<std::string>> suppressions;
  int line_count = 0;
};

LexedFile Lex(const std::string& source);

// True when `rule` is suppressed on `line` (exact rule id or "*").
bool IsSuppressed(const LexedFile& lex, int line, const std::string& rule);

// The suppression entry that covers (line, rule): the exact rule id when
// listed, the sentinel "*" for a NOLINT-ARIDE(*) wildcard, or "" when the
// line is not suppressed for this rule. Callers use the returned entry to
// track which suppressions actually matched a finding (see stale-nolint).
std::string MatchSuppression(const LexedFile& lex, int line,
                             const std::string& rule);

}  // namespace aride_lint

#endif  // AUCTIONRIDE_TOOLS_ARIDE_LINT_LEXER_H_
