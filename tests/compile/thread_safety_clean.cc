// Positive fixture for cmake/ThreadSafety.cmake's configure-time
// self-check: canonical annotated-mutex usage that MUST compile cleanly
// under -Wthread-safety -Werror=thread-safety. If this stops compiling,
// the annotation macros in common/thread_annotations.h (or the wrappers
// in common/mutex.h) are broken — fix them, don't weaken the check.
//
// Not part of any test binary: only try_compile in cmake/ThreadSafety.cmake
// builds this file.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    auctionride::MutexLock lock(mu_);
    ++value_;
    if (value_ > 0) ready_ = true;
    cv_.NotifyAll();
  }

  int WaitAndGet() {
    auctionride::MutexLock lock(mu_);
    while (!ready_) cv_.Wait(mu_);
    return value_;
  }

 private:
  mutable auctionride::Mutex mu_;
  auctionride::CondVar cv_;
  int value_ ARIDE_GUARDED_BY(mu_) = 0;
  bool ready_ ARIDE_GUARDED_BY(mu_) = false;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.WaitAndGet() == 1 ? 0 : 1;
}
