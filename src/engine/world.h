// Shard-local world state: vehicles, pending orders, and the physics that
// moves them (legs, arrivals, faults). Extracted from the round simulator so
// the sharded engine and the legacy Simulator share one implementation.
//
// A ShardWorld owns the vehicles of one region shard plus that shard's slice
// of the pending-order pool. Every phase method is shard-local and returns an
// EffectBatch of buffered side effects instead of mutating shared totals;
// the driver replays batches into the shared SimResult serially in a fixed
// shard order. Floating-point sums are replayed element-by-element — addition
// order is part of the bit-identity contract (docs/ENGINE.md), so a batch
// records the exact sequence of refunds/payments, not their sum.
//
// The per-order ledger is global (indexed by OrderId) but access is
// shard-disjoint: an order's ledger entry is only touched by the shard that
// currently owns its vehicle or its pending-pool slot, and ownership only
// changes at serial barriers (dispatch application, migration, refund).

#ifndef AUCTIONRIDE_ENGINE_WORLD_H_
#define AUCTIONRIDE_ENGINE_WORLD_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "auction/types.h"
#include "common/rng.h"
#include "engine/faults.h"
#include "engine/result.h"
#include "roadnet/astar.h"
#include "roadnet/oracle.h"
#include "workload/generator.h"

namespace auctionride {

/// Per-order lifecycle/financial ledger entry, indexed by OrderId.
struct OrderLedgerEntry {
  bool dispatched = false;
  bool expired = false;
  bool completed = false;
  // Set when the order was stranded/cancelled and awaits re-dispatch;
  // cleared (and counted) when a later round re-dispatches it.
  bool recovered = false;
  Seconds dispatch_time_s;
  Seconds pickup_time_s;
  Seconds dropoff_time_s;
  Money payment;
  bool shared = false;  // shared the vehicle with another order
  // Vehicle currently assigned (valid while dispatched).
  VehicleId vehicle = kInvalidVehicle;
};

/// A vehicle owned by one shard.
struct WorldVehicle {
  Vehicle state;
  Seconds online_s;
  Seconds offline_s;
  // Node path of the current leg (state.next_node == path[path_pos]).
  std::vector<NodeId> leg_path;
  std::size_t path_pos = 0;
  // Orders currently riding (for shared-ride accounting).
  std::vector<OrderId> riding;
  // Rebalancer-directed relocation target: while idle the vehicle drives
  // toward this node instead of random-walking. kInvalidNode = not
  // relocating. Relocation legs never consume the shard's Rng stream.
  NodeId relocate_target = kInvalidNode;
};

/// Buffered side effects of one world phase. The driver replays batches into
/// the shared SimResult in fixed shard order via ApplyEffects.
struct EffectBatch {
  std::vector<OrderEvent> events;
  // Exact refund/payment sequences (not sums): replayed element-by-element
  // so double accumulation order matches the legacy simulator bit-for-bit.
  std::vector<Money> refunds;
  std::vector<Money> payments;
  int stranded = 0;
  int cancelled = 0;
  int expired = 0;
  int dispatched_delta = 0;  // net change to orders_dispatched
  int redispatched = 0;
  int completed = 0;
  Seconds max_wasted_violation_s{-1e18};
};

/// Replays a batch into the aggregate result (serial, driver-side only).
void ApplyEffects(const EffectBatch& batch, SimResult* result);

/// Drops warm-start hints invalidated by a batch's lifecycle events: a
/// stranded vehicle's hints are stale, a cancelled/expired/dispatched order
/// no longer needs hints, and a pickup/dropoff mutates the vehicle's plan
/// (hints were computed against the old plan). No-op when `warm` is null.
/// Must run at the same serial barriers as ApplyEffects so the cache state
/// is a pure function of the replayed event sequence.
void InvalidateWarmStart(const EffectBatch& batch, WarmStartCache* warm);

/// Result of one shard's pending-order pass.
struct PendingPass {
  EffectBatch fx;  // issued + expired events
  // Orders submitted to this round's auction, bid-escalated copies, in
  // ascending order-id order (the legacy scan order).
  std::vector<Order> submitted;
};

struct WorldOptions {
  Seconds round_duration_s{10};
  Seconds max_pending_s{300};
  Money pending_bid_increment;
};

class ShardWorld {
 public:
  /// `oracle`, `orders` (the immutable order catalog, indexed by OrderId),
  /// and `ledger` (shared, shard-disjoint) must outlive the world.
  ShardWorld(const DistanceOracle* oracle, const std::vector<Order>* orders,
             std::vector<OrderLedgerEntry>* ledger, WorldOptions options,
             uint64_t rng_seed);

  /// Adds a vehicle, keeping the shard's vehicle list sorted by id.
  void AddVehicle(const VehicleSpawn& spawn);

  /// Inserts one order into the pending pool at its id-sorted position.
  void EnqueueOrder(const Order& order);
  /// Sorts `batch` by id and merges it into the pending pool.
  void EnqueueBatch(std::vector<Order> batch);

  // --- Round phases. All shard-local; safe to run concurrently across
  // --- distinct shards between serial barriers.

  /// Breakdowns (vehicle-id order) then cancellations (order-id order),
  /// exactly the legacy injection sequence.
  EffectBatch InjectFaults(const FaultPlan& plan, int round, Seconds now_s);

  /// Issue/expire/escalate pass over the pending pool in order-id order.
  PendingPass CollectPending(Seconds now_s);

  /// Online vehicles with spare capacity; `online_idx` maps snapshot index
  /// to this shard's vehicle index (for ApplyOutcome).
  std::vector<Vehicle> OnlineSnapshot(
      Seconds now_s, std::vector<std::size_t>* online_idx) const;

  /// Applies a round's dispatch + payments: updated plans, ledger entries,
  /// pool removal, dispatch events.
  EffectBatch ApplyOutcome(const DispatchResult& dispatch,
                           const std::vector<Payment>& payments,
                           Seconds now_s,
                           const std::vector<std::size_t>& online_idx);

  /// Advances every vehicle whose online window overlaps the round.
  EffectBatch AdvanceRound(Seconds now_s);

  /// Drain-phase step: advances only vehicles with remaining plan stops.
  /// Returns true when any vehicle was still busy.
  bool AdvanceBusy(Seconds now_s, EffectBatch* fx);

  // --- Rebalancer support (serial barriers only).

  /// Ids of migratable idle vehicles at `now_s`: online, empty plan, nobody
  /// riding, not already relocating. Ascending id order.
  std::vector<VehicleId> MigratableIdleVehicles(Seconds now_s) const;
  /// Idle supply including relocations already in flight toward this shard.
  std::size_t IdleCount(Seconds now_s) const;

  /// Removes and returns a vehicle (must exist). Used by migration.
  WorldVehicle ExtractVehicle(VehicleId id);
  /// Inserts a migrated vehicle (id-sorted) and points it at
  /// `relocate_target` (pass kInvalidNode to keep it random-walking).
  void InsertVehicle(WorldVehicle vehicle, NodeId relocate_target);

  std::size_t pending_size() const { return pending_.size(); }
  std::size_t vehicle_count() const { return vehicles_.size(); }
  /// Σ delivery distance over this shard's vehicles, in id order.
  Meters DeliveryDistanceSum() const;

 private:
  void RefundAndRequeue(OrderId order, Seconds now_s, OrderEventKind kind,
                        EffectBatch* fx);
  void ProcessArrivalStops(WorldVehicle* vehicle, Seconds arrival_time_s,
                           EffectBatch* fx);
  void StartNextLeg(WorldVehicle* vehicle);
  void AdvanceVehicle(WorldVehicle* vehicle, Seconds start_s, Seconds dt_s,
                      EffectBatch* fx);
  double EdgeLength(NodeId from, NodeId to) const;
  void RebuildVehicleIndex();

  const DistanceOracle* oracle_;
  const std::vector<Order>* orders_;
  std::vector<OrderLedgerEntry>* ledger_;
  WorldOptions options_;
  Rng rng_;
  std::unique_ptr<AStarSearch> path_search_;

  std::vector<WorldVehicle> vehicles_;  // sorted by vehicle id
  // Live-vehicle lookup for fault handling (assignments carry VehicleIds).
  std::unordered_map<VehicleId, std::size_t> vehicle_index_by_id_;
  std::vector<Order> pending_;  // sorted by order id
  // Orders dispatched on this shard and not yet refunded, sorted by id
  // (completed entries linger and are skipped — the cancel scan checks the
  // ledger). Gives the cancellation pass its legacy id-order scan without
  // touching other shards' ledger slices.
  std::vector<OrderId> dispatched_here_;
};

/// Shared end-of-run aggregation: driver utility, rider-experience means,
/// per-round timing means, and the always-on payment-conservation and
/// lifecycle contracts. `result` must already hold rounds/events/counters;
/// `total_delivery_m` is the caller's vehicle-order delivery sum.
void FinalizeResult(const AuctionConfig& config,
                    const std::vector<Order>& orders,
                    const std::vector<OrderLedgerEntry>& ledger,
                    Meters total_delivery_m, SimResult* result);

}  // namespace auctionride

#endif  // AUCTIONRIDE_ENGINE_WORLD_H_
