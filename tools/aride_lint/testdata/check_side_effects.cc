// Golden fixture for the check-side-effects rule. aride_lint_test.cc
// asserts the exact lines that fire — keep line numbers stable.
void FixtureCheckSideEffects(int n, double pay) {
  ARIDE_CHECK(n > 0);
  ARIDE_DCHECK(n++ > 0);
  ARIDE_CHECK_GE(pay -= 1.0, 0.0);
  ARIDE_ACHECK(--n > 0);  // always-on tier: side effects survive release
  ARIDE_CHECK_NEAR(pay, pay *= 2.0, 1e-9);
  ARIDE_CHECK(n == 3);
  (void)pay;
}
