// Round-based ridesharing simulator (paper §V-A).
//
// Orders are issued at their recorded timestamps; undispatched orders pend
// to the next round and are dropped after 5 minutes. Vehicles come online at
// their recorded locations, random-walk over the road network while idle,
// and follow their travel plans (shortest paths, constant speed) when
// dispatched. Every `round_duration_s` the configured mechanism runs on the
// pending orders and online vehicles; accepted plans are applied and
// payments accounted.
//
// The world physics (vehicle legs, arrivals, faults, the pending pool) live
// in engine/world.h — the simulator is the single-shard reference client of
// that machinery, and the sharded engine (engine/engine.h) is the scaled-out
// one. The two must agree bit-for-bit on the `none` fault profile
// (tests/engine_determinism_test.cc).

#ifndef AUCTIONRIDE_SIM_SIMULATOR_H_
#define AUCTIONRIDE_SIM_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "auction/mechanism.h"
#include "auction/warm_start.h"
#include "engine/faults.h"
#include "engine/result.h"
#include "engine/world.h"
#include "exec/thread_pool.h"
#include "roadnet/oracle.h"
#include "workload/generator.h"

namespace auctionride {

struct SimOptions {
  MechanismKind mechanism = MechanismKind::kRank;
  AuctionConfig auction;

  Seconds round_duration_s{10};  // t_rnd, paper default 10 s
  Seconds max_pending_s{300};    // orders are dropped after 5 minutes

  // Bonus escalation (paper §II-B: "the losing requesters in a round can
  // increase their bids in the next dispatch round"): every round an order
  // stays pended, its bid grows by this amount (yuan). 0 disables.
  Money pending_bid_increment;

  // Pricing (GPri/DnW) is much more expensive than dispatch; the
  // dispatch-only experiments (Figs 3-5, 8) turn it off.
  bool run_pricing = false;
  int pricing_threads = 0;  // 0 = hardware concurrency

  // Workers for parallel dispatch candidate generation (results are
  // bit-identical to serial). 0 = hardware concurrency; negative = serial.
  int dispatch_threads = 0;

  // Re-validate every round's dispatch with auction::VerifyDispatch
  // (structure, Definition 4 feasibility, accounting). Cheap relative to
  // dispatch; on by default in tests, available in production for paranoia.
  bool verify_dispatch = false;

  uint64_t seed = 1;  // drives the idle random walk

  // Fault injection + degradation budgets (docs/ROBUSTNESS.md). Inactive by
  // default. Callers usually set this to FaultOptionsForProfile(profile,
  // seed) or FaultOptionsFromEnv(seed) — passing the sim seed keeps one knob
  // reproducing the whole run.
  FaultOptions faults;
};

class Simulator {
 public:
  /// The oracle (and its network) must outlive the simulator.
  Simulator(const DistanceOracle* oracle, Workload workload,
            SimOptions options);

  /// Runs the simulation to completion and returns aggregate results.
  SimResult Run();

 private:
  void RunRound(Seconds now_s, SimResult* result);

  const DistanceOracle* oracle_;
  Workload workload_;
  SimOptions options_;
  FaultPlan fault_plan_;
  int round_index_ = 0;  // wall-clock round counter driving the fault plan
  std::unique_ptr<ThreadPool> pricing_pool_;
  std::unique_ptr<ThreadPool> dispatch_pool_;

  std::vector<OrderLedgerEntry> ledger_;
  std::unique_ptr<ShardWorld> world_;

  // Warm-start hints carried between rounds (anytime quality curve only:
  // budgeted runs with the anytime contract on). The cache is a pure
  // function of the replayed event sequence, so it never perturbs
  // determinism — hints only permute processing order within a round.
  WarmStartCache warm_;
  bool warm_enabled_ = false;
};

}  // namespace auctionride

#endif  // AUCTIONRIDE_SIM_SIMULATOR_H_
