#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "auction/greedy.h"
#include "auction/optimal.h"
#include "auction/rank.h"
#include "common/rng.h"
#include "roadnet/builder.h"
#include "testutil.h"

namespace auctionride {
namespace {

using testutil::MakeOrder;
using testutil::MakeVehicle;

TEST(ExactBestPlanTest, SingleOrderEqualsShortestPath) {
  RoadNetwork net = testutil::LineNetwork(10, 1000);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  const Vehicle v = MakeVehicle(0, 0);
  const Order o = MakeOrder(1, 2, 7, 20, oracle);
  const ExactPlanResult exact = ExactBestPlan(v, {&o}, Seconds(0), oracle);
  ASSERT_TRUE(exact.feasible);
  EXPECT_DOUBLE_EQ(exact.delta_delivery_m.value(), 5000);
}

TEST(ExactBestPlanTest, FindsInterleavingInsertionMisses) {
  // A case where insertion order matters: the exact planner may reorder
  // everything, so its Δ is never worse than PlanPack's.
  RoadNetwork net = testutil::LatticeNetwork(8, 8, 500);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  const Vehicle v = MakeVehicle(0, 0);
  const Order a = MakeOrder(1, 9, 45, 20, oracle, 3.0);
  const Order b = MakeOrder(2, 18, 36, 20, oracle, 3.0);
  const Order c = MakeOrder(3, 27, 54, 20, oracle, 3.0);
  const ExactPlanResult exact = ExactBestPlan(v, {&a, &b, &c}, Seconds(0), oracle);
  ASSERT_TRUE(exact.feasible);
  EXPECT_GT(exact.delta_delivery_m, Meters(0));
}

TEST(ExactBestPlanTest, CapacityBound) {
  RoadNetwork net = testutil::LineNetwork(10, 500);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  const Vehicle v = MakeVehicle(0, 0, /*capacity=*/1);
  const Order a = MakeOrder(1, 1, 3, 10, oracle);
  const Order b = MakeOrder(2, 2, 4, 10, oracle);
  EXPECT_FALSE(ExactBestPlan(v, {&a, &b}, Seconds(0), oracle).feasible);
  EXPECT_TRUE(ExactBestPlan(v, {&a}, Seconds(0), oracle).feasible);
}

TEST(OptimalDispatchTest, EmptyInstance) {
  RoadNetwork net = testutil::LineNetwork(4, 500);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  std::vector<Order> orders;
  std::vector<Vehicle> vehicles;
  AuctionInstance in;
  in.orders = &orders;
  in.vehicles = &vehicles;
  in.oracle = &oracle;
  const OptimalResult r = OptimalDispatch(in);
  EXPECT_EQ(r.total_utility, Money(0));
  EXPECT_TRUE(r.assignment.empty());
}

TEST(OptimalDispatchTest, LeavesNegativeUtilityOrdersOut) {
  RoadNetwork net = testutil::LineNetwork(16, 1000);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  std::vector<Order> orders = {MakeOrder(0, 2, 14, /*bid=*/5, oracle)};
  std::vector<Vehicle> vehicles = {MakeVehicle(0, 2)};
  AuctionInstance in;
  in.orders = &orders;
  in.vehicles = &vehicles;
  in.oracle = &oracle;
  const OptimalResult r = OptimalDispatch(in);
  EXPECT_EQ(r.total_utility, Money(0));  // dispatching would lose money
  EXPECT_TRUE(r.assignment.empty());
}

TEST(OptimalDispatchTest, FindsJointlyProfitablePack) {
  RoadNetwork net = testutil::LineNetwork(24, 1000);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  std::vector<Order> orders = {
      MakeOrder(0, 4, 16, /*bid=*/20, oracle),
      MakeOrder(1, 5, 15, /*bid=*/20, oracle),
  };
  std::vector<Vehicle> vehicles = {MakeVehicle(0, 4)};
  AuctionInstance in;
  in.orders = &orders;
  in.vehicles = &vehicles;
  in.oracle = &oracle;
  const OptimalResult r = OptimalDispatch(in);
  EXPECT_EQ(r.assignment.size(), 2u);
  EXPECT_GT(r.total_utility, Money(0));
}

// Property: on random small instances, the optimum dominates both
// heuristics, and Rank respects its 1/m bound (Theorem IV.1) with room to
// spare in practice.
class OptimalDominanceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimalDominanceTest, OptimumDominatesHeuristics) {
  Rng rng(GetParam());
  GridNetworkOptions options;
  options.columns = 7;
  options.rows = 7;
  options.spacing_m = 600;
  options.seed = GetParam() + 40;
  RoadNetwork grid = BuildGridNetwork(options);
  DistanceOracle oracle(&grid, DistanceOracle::Backend::kDijkstra);

  std::vector<Order> orders;
  std::vector<Vehicle> vehicles;
  for (int j = 0; j < 5; ++j) {
    NodeId s = 0;
    NodeId e = 0;
    while (s == e) {
      s = static_cast<NodeId>(
          rng.UniformInt(static_cast<uint64_t>(grid.num_nodes())));
      e = static_cast<NodeId>(
          rng.UniformInt(static_cast<uint64_t>(grid.num_nodes())));
    }
    orders.push_back(MakeOrder(j, s, e, rng.Uniform(10, 40), oracle, 2.2));
  }
  for (int i = 0; i < 2; ++i) {
    vehicles.push_back(MakeVehicle(
        i,
        static_cast<NodeId>(
            rng.UniformInt(static_cast<uint64_t>(grid.num_nodes()))),
        /*capacity=*/2));
  }
  AuctionInstance in;
  in.orders = &orders;
  in.vehicles = &vehicles;
  in.oracle = &oracle;

  const OptimalResult opt = OptimalDispatch(in);
  const DispatchResult greedy = GreedyDispatch(in);
  const DispatchResult rank = RankDispatch(in).result;
  EXPECT_GE(opt.total_utility, greedy.total_utility - Money(1e-6));
  EXPECT_GE(opt.total_utility, rank.total_utility - Money(1e-6));
  if (opt.total_utility > Money(1e-9)) {
    // Theorem IV.1: Rank >= OPT/m. (Holds with the restricted pack universe
    // because every singleton pack is enumerated.)
    EXPECT_GE(rank.total_utility,
              opt.total_utility / static_cast<double>(orders.size()) -
                  Money(1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalDominanceTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

}  // namespace
}  // namespace auctionride
