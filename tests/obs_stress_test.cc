// Concurrency stress for the observability layer, meant to run under TSan
// (cmake --preset tsan): many threads hammer the same registry metrics and
// the tracer while another thread snapshots and serializes concurrently.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace auctionride {
namespace obs {
namespace {

TEST(ObsStressTest, ConcurrentMetricUpdatesAndSnapshots) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;

  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snap = registry.Snapshot();
      (void)snap;
      registry.GetHistogram("stress.hist")->Summary();
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      Counter* c = registry.GetCounter("stress.counter");
      Gauge* g = registry.GetGauge("stress.gauge");
      Histogram::Options opts;
      opts.reservoir_capacity = 256;
      Histogram* h = registry.GetHistogram("stress.hist", opts);
      for (int i = 0; i < kOpsPerThread; ++i) {
        c->Add(1);
        g->Max(static_cast<double>(i));
        h->Observe(static_cast<double>(t * kOpsPerThread + i));
        // Exercise get-or-create racing against updates.
        registry.GetCounter("stress.counter" + std::to_string(i % 4))
            ->Add(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("stress.counter"), kThreads * kOpsPerThread);
  EXPECT_EQ(snap.histograms.at("stress.hist").count,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_DOUBLE_EQ(snap.gauges.at("stress.gauge"), kOpsPerThread - 1);
}

TEST(ObsStressTest, ConcurrentTracingAndSerialization) {
#if defined(ARIDE_OBS_DISABLED)
  GTEST_SKIP() << "OBS_TRACE_* macros are no-ops with ARIDE_OBS=OFF";
#endif
  Tracer::Clear();
  Tracer::SetEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 2000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      Tracer::SetThreadName("stress-worker");
      for (int i = 0; i < kSpansPerThread; ++i) {
        OBS_TRACE_SPAN("stress.span");
        OBS_TRACE_COUNTER("stress.value", static_cast<double>(i));
      }
    });
  }
  // Serialize while spans are still being recorded.
  const std::string path = ::testing::TempDir() + "/obs_stress_trace.json";
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(Tracer::WriteChromeTrace(path).ok());
  }
  for (std::thread& w : workers) w.join();
  Tracer::SetEnabled(false);

  EXPECT_GE(Tracer::EventCount(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread * 2);
  EXPECT_TRUE(Tracer::WriteChromeTrace(path).ok());
  Tracer::Clear();
}

}  // namespace
}  // namespace obs
}  // namespace auctionride
