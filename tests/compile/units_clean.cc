// Configure-time CLEAN fixture for cmake/Units.cmake: canonical use of the
// strong unit types must compile (with ARIDE_UNITS_STRICT defined, so the
// in-header static-assert suite runs too). If this fails, units.h itself —
// or its algebra — is broken.

#include "common/units.h"

namespace auctionride {
namespace {

// The hot-path shapes the refactor leans on, spelled out once.
constexpr Money PairUtility(Money bid, MoneyPerMeter alpha,
                            Meters delta_delivery) {
  return bid - alpha * delta_delivery;
}

constexpr Seconds TravelTime(Meters leg, MetersPerSecond speed) {
  return leg / speed;
}

static_assert(PairUtility(Money(20.0), MoneyPerMeter(3.0 / 1000.0),
                          Meters(2000.0))
                  .value() == 20.0 - 3.0 / 1000.0 * 2000.0);
static_assert(TravelTime(Meters(160.0), MetersPerSecond(8.0)).value() ==
              160.0 / 8.0);

// Accumulation, scaling, ordering, and the explicit escape hatch.
constexpr double Shapes() {
  Money total;
  total += Money(12.5);
  total -= Money(2.5) * 0.5;
  Meters detour = 2.0 * Meters(300.0);
  Seconds deadline = Seconds(100.0) + TravelTime(detour, MetersPerSecond(8.0));
  double ratio = total / Money(2.0);  // same-dimension ratio is raw
  bool late = deadline > Seconds(170.0);
  return total.value() + ratio + (late ? detour.value() : 0.0);
}
static_assert(Shapes() > 0.0);

}  // namespace
}  // namespace auctionride

int main() { return 0; }
