#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "auction/optimal.h"
#include "common/rng.h"
#include "planner/insertion.h"
#include "planner/pack_planner.h"
#include "planner/plan_eval.h"
#include "roadnet/builder.h"
#include "testutil.h"

namespace auctionride {
namespace {

using testutil::MakeOrder;
using testutil::MakeVehicle;

// The toy example of the paper's Figure 1: nodes v1, s1, s3, s2, e2, e3, e1
// chained with unit-length segments, plus direct segments s1-s2, e2-e1 and
// s3-e3 so that the shortest s1->e1 delivery is 3 units while the full tour
// v1 s1 s3 s2 e2 e3 e1 delivers r1 in 5 units.
class Figure1Test : public ::testing::Test {
 protected:
  static constexpr double kUnit = 1000;  // meters per segment (te = unit/speed)
  enum : NodeId { kV1 = 0, kS1, kS3, kS2, kE2, kE3, kE1 };

  void SetUp() override {
    for (int i = 0; i < 7; ++i) net_.AddNode({i * kUnit, 0});
    // Chain.
    for (NodeId n = kV1; n < kE1; ++n) {
      net_.AddBidirectionalEdge(n, n + 1, kUnit);
    }
    // Direct segments from the figure.
    net_.AddBidirectionalEdge(kS1, kS2, kUnit);
    net_.AddBidirectionalEdge(kE2, kE1, kUnit);
    net_.AddBidirectionalEdge(kS3, kE3, kUnit);
    net_.Build();
    oracle_ = std::make_unique<DistanceOracle>(
        &net_, DistanceOracle::Backend::kDijkstra);
  }

  Seconds Te() const { return Meters(kUnit) / oracle_->speed_mps(); }

  RoadNetwork net_;
  std::unique_ptr<DistanceOracle> oracle_;
};

TEST_F(Figure1Test, ShortestDeliveriesMatchPaper) {
  EXPECT_DOUBLE_EQ(oracle_->Distance(kS1, kE1), 3 * kUnit);  // s1 s2 e2 e1
  EXPECT_DOUBLE_EQ(oracle_->Distance(kV1, kS1), kUnit);
}

TEST_F(Figure1Test, FullTourWastesThreeTeForR1) {
  // r1 = <s1, e1> with θ1 = 2te, the invalid case discussed below Def. 4.
  Order r1 = MakeOrder(1, kS1, kE1, 30, *oracle_);
  r1.max_wasted_time_s = 2 * Te();
  // The example only constrains r1; keep r2/r3 slack.
  Order r2 = MakeOrder(2, kS2, kE2, 30, *oracle_, /*gamma=*/8.0);
  Order r3 = MakeOrder(3, kS3, kE3, 30, *oracle_, /*gamma=*/8.0);

  const Vehicle v1 = MakeVehicle(1, kV1);
  const Seconds now;
  std::vector<PlanStop> tour = {
      {kS1, 1, StopType::kPickup, Seconds(0)},
      {kS3, 3, StopType::kPickup, Seconds(0)},
      {kS2, 2, StopType::kPickup, Seconds(0)},
      {kE2, 2, StopType::kDropoff, r2.DropoffDeadline(now)},
      {kE3, 3, StopType::kDropoff, r3.DropoffDeadline(now)},
      {kE1, 1, StopType::kDropoff, r1.DropoffDeadline(now)},
  };
  const PlanEvaluation eval = EvaluatePlan(v1, tour, now, *oracle_);
  // r1's wasted time is wt + dt = 6te − 3te = 3te > θ1 = 2te: invalid.
  EXPECT_FALSE(eval.feasible);

  // With θ1 = 3te the same tour becomes valid.
  r1.max_wasted_time_s = 3 * Te();
  tour.back().deadline_s = r1.DropoffDeadline(now);
  const PlanEvaluation eval2 = EvaluatePlan(v1, tour, now, *oracle_);
  EXPECT_TRUE(eval2.feasible);
  // Delivery excludes the approach leg v1->s1: 5 segments.
  EXPECT_DOUBLE_EQ(eval2.delivery_distance_m.value(), 5 * kUnit);
  EXPECT_DOUBLE_EQ(eval2.total_distance_m.value(), 6 * kUnit);
}

TEST_F(Figure1Test, ValidAlternativeDispatchesR1AndR3) {
  Order r1 = MakeOrder(1, kS1, kE1, 30, *oracle_);
  r1.max_wasted_time_s = 2 * Te();
  Order r3 = MakeOrder(3, kS3, kE3, 30, *oracle_, /*gamma=*/4.0);
  const Vehicle v1 = MakeVehicle(1, kV1);
  const Seconds now;
  const std::vector<PlanStop> plan = {
      {kS1, 1, StopType::kPickup, Seconds(0)},
      {kS3, 3, StopType::kPickup, Seconds(0)},
      {kE3, 3, StopType::kDropoff, r3.DropoffDeadline(now)},
      {kE1, 1, StopType::kDropoff, r1.DropoffDeadline(now)},
  };
  const PlanEvaluation eval = EvaluatePlan(v1, plan, now, *oracle_);
  EXPECT_TRUE(eval.feasible);
  EXPECT_DOUBLE_EQ(eval.delivery_distance_m.value(), 3 * kUnit);
}

TEST(PlanEvalTest, CapacityViolationIsInfeasible) {
  RoadNetwork net = testutil::LineNetwork(8, 500);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  Vehicle v = MakeVehicle(0, 0, /*capacity=*/1);
  Order a = MakeOrder(1, 1, 6, 10, oracle);
  Order b = MakeOrder(2, 2, 5, 10, oracle);
  const std::vector<PlanStop> plan = {
      {1, 1, StopType::kPickup, Seconds(0)},
      {2, 2, StopType::kPickup, Seconds(0)},
      {5, 2, StopType::kDropoff, b.DropoffDeadline(Seconds(0))},
      {6, 1, StopType::kDropoff, a.DropoffDeadline(Seconds(0))},
  };
  EXPECT_FALSE(EvaluatePlan(v, plan, Seconds(0), oracle).feasible);
  v.capacity = 2;
  EXPECT_TRUE(EvaluatePlan(v, plan, Seconds(0), oracle).feasible);
}

TEST(PlanEvalTest, OnboardRiderCountsAgainstCapacity) {
  RoadNetwork net = testutil::LineNetwork(8, 500);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  Vehicle v = MakeVehicle(0, 0, /*capacity=*/2);
  v.onboard = 2;  // full: two riders already in the car
  Order a = MakeOrder(1, 1, 6, 10, oracle);
  const std::vector<PlanStop> plan = {
      {1, 1, StopType::kPickup, Seconds(0)},
      {6, 1, StopType::kDropoff, a.DropoffDeadline(Seconds(0))},
  };
  EXPECT_FALSE(EvaluatePlan(v, plan, Seconds(0), oracle).feasible);
}

TEST(PlanEvalTest, DeliveryCountsEverythingOnceInDelivery) {
  RoadNetwork net = testutil::LineNetwork(10, 100);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  Vehicle v = MakeVehicle(0, 2);
  v.onboard = 1;  // already delivering
  v.extra_distance_m = Meters(40);
  Order a = MakeOrder(1, 4, 7, 10, oracle);
  const std::vector<PlanStop> plan = {
      {4, 1, StopType::kPickup, Seconds(0)},
      {7, 1, StopType::kDropoff, a.DropoffDeadline(Seconds(0))},
      {9, 9, StopType::kDropoff, Seconds(1e9)},  // the onboard rider
  };
  const PlanEvaluation eval = EvaluatePlan(v, plan, Seconds(0), oracle);
  ASSERT_TRUE(eval.feasible);
  // extra 40 + (2->4) 200 + (4->7) 300 + (7->9) 200, all in delivery.
  EXPECT_DOUBLE_EQ(eval.delivery_distance_m.value(), 740);
  EXPECT_DOUBLE_EQ(eval.total_distance_m.value(), 740);
}

TEST(PlanEvalTest, EmptyPlanIsFeasibleWithZeroDistance) {
  RoadNetwork net = testutil::LineNetwork(3, 100);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  const Vehicle v = MakeVehicle(0, 1);
  const PlanEvaluation eval = EvaluatePlan(v, {}, Seconds(0), oracle);
  EXPECT_TRUE(eval.feasible);
  EXPECT_DOUBLE_EQ(eval.total_distance_m.value(), 0);
  EXPECT_DOUBLE_EQ(eval.delivery_distance_m.value(), 0);
}

TEST(InsertionTest, SingleOrderIntoIdleVehicle) {
  RoadNetwork net = testutil::LineNetwork(10, 1000);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  const Vehicle v = MakeVehicle(0, 0);
  const Order o = MakeOrder(1, 2, 6, 20, oracle);
  const InsertionResult ins = BestInsertion(v, o, Seconds(0), oracle);
  ASSERT_TRUE(ins.feasible);
  // Delivery distance = d(s, e) = 4000; the approach 0->2 is not delivery.
  EXPECT_DOUBLE_EQ(ins.delta_delivery_m.value(), 4000);
  ASSERT_EQ(ins.new_plan.size(), 2u);
  EXPECT_EQ(ins.new_plan[0].node, 2);
  EXPECT_EQ(ins.new_plan[1].node, 6);
}

TEST(InsertionTest, InfeasibleWhenThetaTooTight) {
  RoadNetwork net = testutil::LineNetwork(10, 1000);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  const Vehicle v = MakeVehicle(0, 0);
  Order o = MakeOrder(1, 5, 7, 20, oracle);
  // Approach needs 5000 m; wt = 5000/speed > θ.
  o.max_wasted_time_s = Meters(4000) / oracle.speed_mps();
  EXPECT_FALSE(BestInsertion(v, o, Seconds(0), oracle).feasible);
}

TEST(InsertionTest, SharedRideReducesMarginalCost) {
  RoadNetwork net = testutil::LineNetwork(10, 1000);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  Vehicle v = MakeVehicle(0, 0);
  const Order a = MakeOrder(1, 1, 8, 20, oracle);
  const InsertionResult first = BestInsertion(v, a, Seconds(0), oracle);
  ASSERT_TRUE(first.feasible);
  v.plan.stops = first.new_plan;

  // Same corridor: marginal delivery distance should be ~0.
  const Order b = MakeOrder(2, 2, 7, 20, oracle);
  const InsertionResult second = BestInsertion(v, b, Seconds(0), oracle);
  ASSERT_TRUE(second.feasible);
  EXPECT_DOUBLE_EQ(second.delta_delivery_m.value(), 0);
  EXPECT_TRUE(TravelPlan{second.new_plan}.PrecedenceHolds());
}

TEST(InsertionTest, RespectsExistingRiderDeadline) {
  RoadNetwork net = testutil::LineNetwork(20, 1000);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  Vehicle v = MakeVehicle(0, 1);  // at r_a's origin: no approach waste
  Order a = MakeOrder(1, 1, 5, 20, oracle, /*gamma=*/1.2);
  const InsertionResult first = BestInsertion(v, a, Seconds(0), oracle);
  ASSERT_TRUE(first.feasible);
  v.plan.stops = first.new_plan;

  // A long opposite detour would violate r_a's deadline; the only feasible
  // insertions keep r_a's drop-off early.
  const Order b = MakeOrder(2, 15, 18, 20, oracle);
  const InsertionResult second = BestInsertion(v, b, Seconds(0), oracle);
  if (second.feasible) {
    const PlanEvaluation eval = EvaluatePlan(v, second.new_plan, Seconds(0), oracle);
    EXPECT_TRUE(eval.feasible);
  }
}

TEST(InsertionTest, FullVehicleRejects) {
  RoadNetwork net = testutil::LineNetwork(5, 1000);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  Vehicle v = MakeVehicle(0, 0, /*capacity=*/1);
  v.onboard = 1;
  const Order o = MakeOrder(1, 1, 3, 20, oracle);
  EXPECT_FALSE(BestInsertion(v, o, Seconds(0), oracle).feasible);
}

TEST(InsertionTest, MaxPickupRadius) {
  RoadNetwork net = testutil::LineNetwork(5, 1000);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  Order o = MakeOrder(1, 1, 3, 20, oracle);
  o.max_wasted_time_s = Seconds(120);
  EXPECT_DOUBLE_EQ(MaxPickupRadiusM(o, MetersPerSecond(10.0)).value(), 1200);
}

TEST(PackPlannerTest, PairOnSharedCorridor) {
  RoadNetwork net = testutil::LineNetwork(12, 1000);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  const Vehicle v = MakeVehicle(0, 0);
  const Order a = MakeOrder(1, 1, 9, 20, oracle);
  const Order b = MakeOrder(2, 2, 8, 20, oracle);
  const std::vector<const Order*> pack = {&a, &b};
  const PackPlanResult plan = PlanPack(v, pack, Seconds(0), oracle);
  ASSERT_TRUE(plan.feasible);
  // Joint delivery: s_a(1) -> s_b(2) -> e_b(8) -> e_a(9) = 8000 m.
  EXPECT_DOUBLE_EQ(plan.delta_delivery_m.value(), 8000);
  EXPECT_EQ(plan.new_plan.size(), 4u);
}

TEST(PackPlannerTest, MatchesExactPlanOnSmallCases) {
  GridNetworkOptions options;
  options.columns = 8;
  options.rows = 8;
  options.spacing_m = 500;
  options.seed = 12;
  RoadNetwork net = BuildGridNetwork(options);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  Rng rng(5);
  int feasible_cases = 0;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Order> orders;
    for (int j = 0; j < 2; ++j) {
      NodeId s = 0;
      NodeId e = 1;
      do {
        s = static_cast<NodeId>(rng.UniformInt(
            static_cast<uint64_t>(net.num_nodes())));
        e = static_cast<NodeId>(rng.UniformInt(
            static_cast<uint64_t>(net.num_nodes())));
      } while (s == e);
      orders.push_back(MakeOrder(j, s, e, 10, oracle, /*gamma=*/3.0));
    }
    // Start at the first order's origin so approaches stay feasible.
    const Vehicle v = MakeVehicle(0, orders[0].origin);
    const std::vector<const Order*> pack = {&orders[0], &orders[1]};
    const PackPlanResult insertion_plan = PlanPack(v, pack, Seconds(0), oracle);
    const ExactPlanResult exact = ExactBestPlan(v, {pack.begin(), pack.end()},
                                                Seconds(0), oracle);
    // Insertion is a (possibly suboptimal) upper bound on the exact optimum,
    // and they must agree on feasibility in this direction:
    if (insertion_plan.feasible) {
      ASSERT_TRUE(exact.feasible);
      EXPECT_GE(insertion_plan.delta_delivery_m,
                exact.delta_delivery_m - Meters(1e-6));
      ++feasible_cases;
    }
  }
  EXPECT_GT(feasible_cases, 5);  // the sweep must actually exercise packs
}

// Property sweep: BestInsertion's plan must preserve the relative order of
// the existing stops, contain the new order exactly once (pickup before
// drop-off), and its ΔD must equal the delivery-distance difference
// recomputed independently with EvaluatePlan.
class InsertionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InsertionPropertyTest, PlanStructureAndDeltaConsistency) {
  Rng rng(GetParam() * 31 + 7);
  GridNetworkOptions options;
  options.columns = 8;
  options.rows = 8;
  options.spacing_m = 500;
  options.seed = GetParam() + 300;
  RoadNetwork grid = BuildGridNetwork(options);
  DistanceOracle oracle(&grid, DistanceOracle::Backend::kDijkstra);

  auto random_node = [&]() {
    return static_cast<NodeId>(
        rng.UniformInt(static_cast<uint64_t>(grid.num_nodes())));
  };

  for (int trial = 0; trial < 25; ++trial) {
    // Random vehicle with 0-2 existing (generous-deadline) orders.
    Vehicle v = testutil::MakeVehicle(0, random_node());
    const int existing = static_cast<int>(rng.UniformInt(uint64_t{3}));
    std::vector<Order> carried;
    for (int k = 0; k < existing; ++k) {
      NodeId s = random_node();
      NodeId e = random_node();
      if (s == e) continue;
      Order o = testutil::MakeOrder(100 + k, s, e, 10, oracle, /*gamma=*/6.0);
      const InsertionResult ins = BestInsertion(v, o, Seconds(0), oracle);
      if (ins.feasible) {
        v.plan.stops = ins.new_plan;
        carried.push_back(o);
      }
    }
    NodeId s = random_node();
    NodeId e = random_node();
    if (s == e) continue;
    const Order order =
        testutil::MakeOrder(7, s, e, 20, oracle, /*gamma=*/3.0);

    const Meters base_delivery =
        EvaluatePlan(v, v.plan.stops, Seconds(0), oracle).delivery_distance_m;
    const InsertionResult ins = BestInsertion(v, order, Seconds(0), oracle);
    if (!ins.feasible) continue;

    // Relative order of pre-existing stops preserved.
    std::vector<PlanStop> filtered;
    for (const PlanStop& stop : ins.new_plan) {
      if (stop.order != order.id) filtered.push_back(stop);
    }
    ASSERT_EQ(filtered.size(), v.plan.stops.size());
    for (std::size_t i = 0; i < filtered.size(); ++i) {
      EXPECT_EQ(filtered[i].order, v.plan.stops[i].order);
      EXPECT_EQ(filtered[i].node, v.plan.stops[i].node);
    }
    // New order appears as pickup before drop-off.
    int pickup_pos = -1;
    int dropoff_pos = -1;
    for (std::size_t i = 0; i < ins.new_plan.size(); ++i) {
      if (ins.new_plan[i].order != order.id) continue;
      if (ins.new_plan[i].type == StopType::kPickup) {
        pickup_pos = static_cast<int>(i);
      } else {
        dropoff_pos = static_cast<int>(i);
      }
    }
    ASSERT_GE(pickup_pos, 0);
    ASSERT_GT(dropoff_pos, pickup_pos);

    // Independent ΔD recomputation.
    const PlanEvaluation eval = EvaluatePlan(v, ins.new_plan, Seconds(0), oracle);
    ASSERT_TRUE(eval.feasible);
    EXPECT_NEAR(ins.delta_delivery_m.value(),
                (eval.delivery_distance_m - base_delivery).value(), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InsertionPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

TEST(PackPlannerTest, RejectsOverCapacity) {
  RoadNetwork net = testutil::LineNetwork(10, 500);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  const Vehicle v = MakeVehicle(0, 0, /*capacity=*/2);
  const Order a = MakeOrder(1, 1, 4, 10, oracle);
  const Order b = MakeOrder(2, 2, 5, 10, oracle);
  const Order c = MakeOrder(3, 3, 6, 10, oracle);
  const std::vector<const Order*> pack = {&a, &b, &c};
  EXPECT_FALSE(PlanPack(v, pack, Seconds(0), oracle).feasible);
}

// A LegSource that corrupts one specific leg and forwards everything else to
// the oracle — the misbehaving-oracle stub the evaluator must defend
// against.
class CorruptedLegSource final : public LegSource {
 public:
  CorruptedLegSource(const DistanceOracle& oracle, NodeId from, NodeId to,
                     double corrupted_m)
      : oracle_(oracle), from_(from), to_(to), corrupted_m_(corrupted_m) {}
  double LegDistance(NodeId from, NodeId to) const override {
    if (from == from_ && to == to_) return corrupted_m_;
    return oracle_.Distance(from, to);
  }

 private:
  const DistanceOracle& oracle_;
  NodeId from_;
  NodeId to_;
  double corrupted_m_;
};

TEST(PlanEvalTest, NanLegRejectedWithoutPoisoningAccumulators) {
  RoadNetwork net = testutil::LineNetwork(10, 500);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  const Vehicle v = MakeVehicle(0, 0);
  const Order a = MakeOrder(1, 2, 6, 10, oracle);
  const std::vector<PlanStop> plan = {
      {2, 1, StopType::kPickup, Seconds(0)},
      {6, 1, StopType::kDropoff, a.DropoffDeadline(Seconds(0))},
  };
  // Sanity: the uncorrupted walk through the seam is feasible and matches
  // the oracle overload bitwise.
  const PlanEvaluation clean = EvaluatePlan(v, plan, Seconds(0),
                                            oracle.speed_mps(),
                                            OracleLegSource(oracle));
  const PlanEvaluation direct = EvaluatePlan(v, plan, Seconds(0), oracle);
  ASSERT_TRUE(clean.feasible);
  EXPECT_EQ(clean.total_distance_m, direct.total_distance_m);
  EXPECT_EQ(clean.delivery_distance_m, direct.delivery_distance_m);
  EXPECT_EQ(clean.completion_time_s, direct.completion_time_s);

  // NaN on the second leg: historically `leg == kInfDistance` compared
  // false and the NaN flowed into every accumulator; now the leg is
  // rejected and the prefix accumulators stay finite.
  const CorruptedLegSource nan_leg(oracle, 2, 6,
                                   std::numeric_limits<double>::quiet_NaN());
  const PlanEvaluation poisoned =
      EvaluatePlan(v, plan, Seconds(0), oracle.speed_mps(), nan_leg);
  EXPECT_FALSE(poisoned.feasible);
  EXPECT_TRUE(std::isfinite(poisoned.total_distance_m.value()));
  EXPECT_TRUE(std::isfinite(poisoned.delivery_distance_m.value()));
  EXPECT_TRUE(std::isfinite(poisoned.completion_time_s.value()));

  // +inf keeps its historical unreachable semantics.
  const CorruptedLegSource inf_leg(oracle, 2, 6, kInfDistance);
  EXPECT_FALSE(
      EvaluatePlan(v, plan, Seconds(0), oracle.speed_mps(), inf_leg)
          .feasible);
}

// Pins the pickup-deadline contract (model/travel_plan.h): Seconds(0) is
// the no-deadline sentinel; a positive pickup deadline is enforced exactly
// like a drop-off deadline.
TEST(PlanEvalTest, PickupDeadlineContract) {
  RoadNetwork net = testutil::LineNetwork(10, 1000);
  DistanceOracle oracle(&net, DistanceOracle::Backend::kDijkstra);
  const Vehicle v = MakeVehicle(0, 0);
  // γ = 10: the drop-off deadline is far looser than the 5000 m approach,
  // so feasibility below is decided by the pickup deadline alone.
  const Order a = MakeOrder(1, 5, 7, 10, oracle, /*gamma=*/10.0);
  const Seconds pickup_time = Meters(5000) / oracle.speed_mps();

  auto plan_with_pickup_deadline = [&](Seconds deadline) {
    return std::vector<PlanStop>{
        {5, 1, StopType::kPickup, deadline},
        {7, 1, StopType::kDropoff, a.DropoffDeadline(Seconds(0))},
    };
  };
  // Sentinel: no pickup deadline, feasible however long the approach.
  EXPECT_TRUE(EvaluatePlan(v, plan_with_pickup_deadline(Seconds(0)),
                           Seconds(0), oracle)
                  .feasible);
  // Positive and generous: enforced, met.
  EXPECT_TRUE(EvaluatePlan(v,
                           plan_with_pickup_deadline(pickup_time +
                                                     Seconds(1.0)),
                           Seconds(0), oracle)
                  .feasible);
  // Positive and tight: enforced, missed — no longer silently dropped.
  EXPECT_FALSE(EvaluatePlan(v,
                            plan_with_pickup_deadline(pickup_time -
                                                      Seconds(1.0)),
                            Seconds(0), oracle)
                   .feasible);
}

}  // namespace
}  // namespace auctionride
