#include "auction/baselines.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/timer.h"
#include "planner/insertion.h"
#include "spatial/grid_index.h"

namespace auctionride {

DispatchResult FcfsDispatch(const AuctionInstance& instance, bool serve_all) {
  ARIDE_ACHECK(instance.orders != nullptr && instance.vehicles != nullptr &&
           instance.oracle != nullptr);
  WallTimer timer;
  const std::vector<Order>& orders = *instance.orders;
  std::vector<Vehicle> vehicles = *instance.vehicles;
  const MoneyPerMeter alpha_per_m{instance.config.alpha_d_per_km / 1000.0};

  std::vector<GridIndex::Item> items;
  items.reserve(vehicles.size());
  for (std::size_t i = 0; i < vehicles.size(); ++i) {
    items.push_back(
        {static_cast<int32_t>(i),
         instance.oracle->network().position(vehicles[i].next_node)});
  }
  const GridIndex index(std::move(items), /*cell_size_m=*/1000);

  // Issue order = id order (the workload renumbers by issue time).
  std::vector<std::size_t> sequence(orders.size());
  for (std::size_t j = 0; j < sequence.size(); ++j) sequence[j] = j;
  std::sort(sequence.begin(), sequence.end(),
            [&orders](std::size_t a, std::size_t b) {
              if (orders[a].issue_time_s != orders[b].issue_time_s) {
                return orders[a].issue_time_s < orders[b].issue_time_s;
              }
              return orders[a].id < orders[b].id;
            });

  DispatchResult result;
  std::vector<char> vehicle_touched(vehicles.size(), 0);
  for (std::size_t j : sequence) {
    const Order& order = orders[j];
    std::vector<int32_t> candidates;
    if (instance.config.use_spatial_pruning) {
      candidates = index.WithinRadius(
          instance.oracle->network().position(order.origin),
          EuclideanPickupRadiusM(order, *instance.oracle));
    } else {
      candidates.resize(vehicles.size());
      for (std::size_t i = 0; i < vehicles.size(); ++i) {
        candidates[i] = static_cast<int32_t>(i);
      }
    }
    Meters best_delta{std::numeric_limits<double>::infinity()};
    int best_vehicle = -1;
    InsertionResult best_insertion;
    for (int32_t v : candidates) {
      InsertionResult ins = BestInsertion(
          vehicles[static_cast<std::size_t>(v)], order, instance.now_s,
          *instance.oracle);
      if (!ins.feasible || ins.delta_delivery_m >= best_delta) continue;
      best_delta = ins.delta_delivery_m;
      best_vehicle = v;
      best_insertion = std::move(ins);
    }
    if (best_vehicle < 0) continue;
    const Money cost = alpha_per_m * best_delta;
    if (!serve_all && order.bid - cost < instance.config.min_utility) {
      continue;
    }
    Vehicle& vehicle = vehicles[static_cast<std::size_t>(best_vehicle)];
    vehicle.plan.stops = best_insertion.new_plan;
    vehicle_touched[static_cast<std::size_t>(best_vehicle)] = 1;
    result.assignments.push_back(
        {order.id, vehicle.id, cost, order.bid - cost});
    result.total_utility += order.bid - cost;
    result.total_delta_delivery_m += best_delta;
  }

  for (std::size_t i = 0; i < vehicles.size(); ++i) {
    if (vehicle_touched[i]) {
      result.updated_plans.push_back({i, vehicles[i].plan.stops});
    }
  }
  result.elapsed_seconds = Seconds(timer.ElapsedSeconds());
  return result;
}

}  // namespace auctionride
