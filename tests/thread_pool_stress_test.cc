// TSan-targeted stress tests for ThreadPool: concurrent submission from
// many producer threads, tasks that submit tasks, Wait() racing against
// active workers, ParallelFor nesting, and rapid construct/shutdown cycles
// with work still queued — plus the sharded PackMemo that Rank's parallel
// pack generation shares across pool workers. Run these under the tsan
// preset (cmake --preset tsan) to get race detection; under asan they
// double as lifetime checks on the task queue.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "auction/pack_memo.h"
#include "exec/deadline.h"
#include "exec/thread_pool.h"

namespace auctionride {
namespace {

TEST(ThreadPoolStressTest, ConcurrentSubmittersAndWaiters) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  constexpr int kProducers = 6;
  constexpr int kTasksPerProducer = 200;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &executed] {
      for (int t = 0; t < kTasksPerProducer; ++t) {
        pool.Submit([&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
        if (t % 50 == 0) pool.Wait();  // waiters race the other producers
      }
    });
  }
  for (std::thread& p : producers) p.join();
  pool.Wait();
  EXPECT_EQ(executed.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolStressTest, TasksSubmittingTasks) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  constexpr int kRoots = 64;
  for (int t = 0; t < kRoots; ++t) {
    pool.Submit([&pool, &executed] {
      executed.fetch_add(1, std::memory_order_relaxed);
      pool.Submit([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  pool.Wait();
  EXPECT_EQ(executed.load(), 2 * kRoots);
}

TEST(ThreadPoolStressTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolStressTest, ConcurrentParallelForCalls) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::thread> callers;
  callers.reserve(3);
  for (int c = 0; c < 3; ++c) {
    callers.emplace_back([&pool, &sum] {
      pool.ParallelFor(1000, [&sum](std::size_t i) {
        sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
      });
    });
  }
  for (std::thread& c : callers) c.join();
  EXPECT_EQ(sum.load(), 3L * (999L * 1000L / 2));
}

TEST(ThreadPoolStressTest, ShutdownDrainsQueuedTasks) {
  // The destructor must let queued-but-unstarted tasks finish: repeated
  // short-lived pools with a burst of queued work.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> executed{0};
    {
      ThreadPool pool(2);
      for (int t = 0; t < 100; ++t) {
        pool.Submit([&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
      // No Wait(): destruction races the workers through the backlog.
    }
    EXPECT_EQ(executed.load(), 100) << "round " << round;
  }
}

TEST(PackMemoStressTest, ConcurrentLookupInsertOverlappingKeys) {
  // Rank's parallel pack generation: many workers race to look up and
  // insert the same (vehicle, members) keys through the sharded memo. The
  // value of a key is a pure function of it, so whoever inserts first must
  // win with the identical value every reader then sees.
  PackMemo memo;
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 2000;
  constexpr int32_t kVehicles = 8;
  std::atomic<int> wrong_values{0};
  pool.ParallelFor(kTasks, [&](std::size_t t) {
    // Small key space so distinct tasks collide on keys constantly.
    const auto vehicle = static_cast<int32_t>(t % kVehicles);
    const auto a = static_cast<int32_t>(t % 5);
    const auto b = static_cast<int32_t>(t % 3 + 5);
    const std::vector<int32_t> members = {a, b};
    const PackMemo::Eval expect{
        (vehicle + a + b) % 2 == 0,
        Meters(static_cast<double>(vehicle * 100 + a + b))};
    PackMemo::Eval got;
    if (!memo.Lookup(vehicle, members, &got)) {
      memo.Insert(vehicle, members, expect);
      got = expect;
    }
    if (got.feasible != expect.feasible ||
        got.delta_delivery_m != expect.delta_delivery_m) {
      wrong_values.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(wrong_values.load(), 0);
  // 8 vehicles × 5 a-values × 3 b-values distinct keys at most.
  EXPECT_LE(memo.size(), static_cast<std::size_t>(kVehicles * 5 * 3));
  EXPECT_GT(memo.size(), 0u);
  EXPECT_EQ(memo.hits() + memo.misses(), static_cast<int64_t>(kTasks));
}

TEST(PackMemoStressTest, InsertIsIdempotent) {
  PackMemo memo;
  const std::vector<int32_t> members = {1, 4, 9};
  memo.Insert(3, members, {true, Meters(123.0)});
  memo.Insert(3, members, {false, Meters(999.0)});  // loses: first insert wins
  PackMemo::Eval eval;
  ASSERT_TRUE(memo.Lookup(3, members, &eval));
  EXPECT_TRUE(eval.feasible);
  EXPECT_EQ(eval.delta_delivery_m, Meters(123.0));
  EXPECT_EQ(memo.size(), 1u);
}

TEST(ThreadPoolStressTest, ParallelForOrSerialMatchesSerial) {
  // Both paths must produce identical per-slot results; the serial path
  // must also run without any pool.
  constexpr std::size_t kN = 257;
  std::vector<int> with_pool(kN, 0);
  std::vector<int> without_pool(kN, 0);
  ThreadPool pool(3);
  ParallelForOrSerial(&pool, kN, [&](std::size_t i) {
    with_pool[i] = static_cast<int>(i * 7 + 1);
  });
  ParallelForOrSerial(nullptr, kN, [&](std::size_t i) {
    without_pool[i] = static_cast<int>(i * 7 + 1);
  });
  EXPECT_EQ(with_pool, without_pool);
}

TEST(DeadlineStressTest, ConcurrentChargeAndPoll) {
  // Workers hammer Charge() while other threads poll expired(): the relaxed
  // atomic must stay race-free under TSan and lose no charges.
  Deadline dl = Deadline::Synthetic(/*budget_s=*/3600.0);
  constexpr int kThreads = 6;
  constexpr int kChargesPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 2);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dl] {
      for (int c = 0; c < kChargesPerThread; ++c) dl.Charge(3);
    });
  }
  std::atomic<bool> stop{false};
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&dl, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)dl.expired();
      }
    });
  }
  for (int t = 0; t < kThreads; ++t) threads[static_cast<std::size_t>(t)].join();
  stop.store(true, std::memory_order_relaxed);
  for (std::size_t t = kThreads; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(dl.charged_ns(), int64_t{kThreads} * kChargesPerThread * 3);
  EXPECT_FALSE(dl.expired());
}

TEST(DeadlineStressTest, RacingBudgetedParallelForCalls) {
  // Several threads drive budgeted ParallelFor over the same pool while the
  // shared deadline expires mid-flight. Whatever completes must have covered
  // every index; whatever reports false must have been told so coherently.
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    Deadline dl = Deadline::Synthetic(/*budget_s=*/1e-4);
    std::atomic<long> ran{0};
    std::vector<std::thread> callers;
    callers.reserve(3);
    std::atomic<int> completes{0};
    for (int c = 0; c < 3; ++c) {
      callers.emplace_back([&pool, &dl, &ran, &completes] {
        const bool complete = pool.ParallelFor(
            5000,
            [&](std::size_t) {
              ran.fetch_add(1, std::memory_order_relaxed);
              dl.Charge(50);
            },
            &dl);
        if (complete) completes.fetch_add(1);
      });
    }
    for (std::thread& c : callers) c.join();
    // Budget = 100us / 50ns per iteration = 2000 charged iterations max
    // before everyone observes expiry; 3 x 5000 iterations can never all
    // complete.
    EXPECT_EQ(completes.load(), 0) << "round " << round;
    EXPECT_GT(ran.load(), 0) << "round " << round;
  }
}

TEST(ThreadPoolStressTest, WaitFromMultipleThreads) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  for (int t = 0; t < 500; ++t) {
    pool.Submit([&executed] {
      executed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::vector<std::thread> waiters;
  waiters.reserve(4);
  for (int w = 0; w < 4; ++w) {
    waiters.emplace_back([&pool] { pool.Wait(); });
  }
  for (std::thread& w : waiters) w.join();
  EXPECT_EQ(executed.load(), 500);
}

}  // namespace
}  // namespace auctionride
