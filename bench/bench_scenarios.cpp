// Scenario sweep (ours): Greedy vs Rank across the named demand regimes of
// workload/scenarios.h. Expected shape: the mechanisms converge off-peak
// (plentiful supply, solo rides fine) and diverge hardest under the
// downtown shortage — the bonus/auction regime the paper motivates.

#include "auction/greedy.h"
#include "auction/rank.h"
#include "bench_common.h"
#include "common/check.h"
#include "workload/scenarios.h"

namespace auctionride {
namespace bench {
namespace {

void BM_Scenarios(benchmark::State& state) {
  const auto mechanism = static_cast<MechanismKind>(state.range(0));
  const std::vector<std::string_view> names = ScenarioNames();
  const std::string_view name =
      names[static_cast<std::size_t>(state.range(1))];

  World& world = SharedWorld();
  StatusOr<WorkloadOptions> wl =
      ScenarioByName(name, BenchScale() * 0.5, /*seed=*/42);
  ARIDE_ACHECK(wl.ok());
  SimResult result;
  for (auto _ : state) {
    SimOptions options;
    options.auction = PaperAuction();
    options.mechanism = mechanism;
    Workload workload = GenerateWorkload(*wl, *world.oracle, *world.nearest);
    Simulator simulator(world.oracle.get(), std::move(workload), options);
    result = simulator.Run();
  }
  state.SetLabel(std::string(name));
  ReportSim(state, result);
  state.counters["shared_fraction"] = result.shared_ride_fraction;
}

}  // namespace
}  // namespace bench
}  // namespace auctionride

using auctionride::MechanismKind;

BENCHMARK(auctionride::bench::BM_Scenarios)
    ->ArgsProduct({{static_cast<long>(MechanismKind::kGreedy),
                    static_cast<long>(MechanismKind::kRank)},
                   {0, 1, 2, 3, 4}})
    ->ArgNames({"mech", "scenario"})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

int main(int argc, char** argv) {
  return auctionride::bench::BenchMain(
      "scenarios",
      "Scenario sweep",
      "mech 0 = Greedy, mech 1 = Rank; scenarios: 0 morning_peak, "
      "1 evening_peak, 2 off_peak, 3 downtown_shortage, 4 suburban", argc, argv);
}
