#include "auction/mechanism.h"

#include <unordered_map>

#include "auction/baselines.h"
#include "auction/dnw.h"
#include "auction/gpri.h"
#include "auction/greedy.h"
#include "common/check.h"
#include "common/timer.h"
#include "exec/deadline.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace auctionride {

std::string_view MechanismName(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kGreedy:
      return "Greedy+GPri";
    case MechanismKind::kRank:
      return "Rank+DnW";
  }
  return "unknown";
}

std::string_view DispatchTierName(DispatchTier tier) {
  switch (tier) {
    case DispatchTier::kPrimary:
      return "primary";
    case DispatchTier::kGreedyFallback:
      return "greedy_fallback";
    case DispatchTier::kFcfsFallback:
      return "fcfs_fallback";
  }
  return "unknown";
}

MechanismOutcome RunMechanism(MechanismKind kind,
                              const AuctionInstance& instance,
                              const MechanismOptions& options,
                              ThreadPool* pricing_pool,
                              ThreadPool* dispatch_pool) {
  ARIDE_ACHECK(instance.orders != nullptr);
  const double cr = instance.config.charge_ratio;
  ARIDE_ACHECK(cr >= 0 && cr < 1) << "charge ratio must be in [0, 1)";

  // Deduct the dispatch fee from every bid (§V-C).
  std::vector<Order> deducted = *instance.orders;
  for (Order& o : deducted) o.bid *= (1.0 - cr);
  AuctionInstance charged = instance;
  charged.orders = &deducted;
  if (dispatch_pool != nullptr) charged.dispatch_pool = dispatch_pool;
  OBS_GAUGE_SET("auction.dispatch.pool_threads",
                charged.dispatch_pool != nullptr
                    ? static_cast<double>(charged.dispatch_pool->num_threads())
                    : 0.0);

  MechanismOutcome outcome;
  WallTimer dispatch_timer;
  {
    OBS_TRACE_SPAN("auction.dispatch");
    // Degradation ladder: each tier runs under a fresh deadline; an aborted
    // attempt is discarded wholly and the next (cheaper) tier retries. The
    // terminal FCFS tier is unbudgeted, so every round dispatches something.
    std::vector<DispatchTier> tiers = {DispatchTier::kPrimary};
    if (options.budget.active()) {
      if (kind == MechanismKind::kRank) {
        tiers.push_back(DispatchTier::kGreedyFallback);
      }
      tiers.push_back(DispatchTier::kFcfsFallback);
    }
    for (const DispatchTier tier : tiers) {
      const bool budgeted =
          options.budget.active() && tier != DispatchTier::kFcfsFallback;
      Deadline dl = [&] {
        if (!budgeted) return Deadline::Unlimited();
        if (options.budget.wall_clock) {
          return Deadline::WallClock(options.budget.budget_s);
        }
        return Deadline::Synthetic(options.budget.budget_s,
                                   options.budget.query_penalty_s);
      }();
      charged.deadline = budgeted ? &dl : nullptr;
      outcome.rank_artifacts = RankArtifacts{};
      if (tier == DispatchTier::kFcfsFallback) {
        // serve_all=false keeps FCFS inside the mechanism's individual-
        // rationality envelope (only nonnegative-utility pairs dispatch).
        outcome.dispatch = FcfsDispatch(charged, /*serve_all=*/false);
      } else if (kind == MechanismKind::kGreedy ||
                 tier == DispatchTier::kGreedyFallback) {
        outcome.dispatch = GreedyDispatch(charged);
      } else {
        RankRunResult run = RankDispatch(charged);
        outcome.dispatch = std::move(run.result);
        outcome.rank_artifacts = std::move(run.artifacts);
      }
      if (outcome.dispatch.completed) {
        outcome.tier = tier;
        break;
      }
      outcome.dispatch = DispatchResult{};
      OBS_COUNTER_INC("auction.dispatch.deadline_aborts");
    }
    // The last rung is unbudgeted, so the ladder cannot end incomplete.
    ARIDE_ACHECK(outcome.dispatch.completed);
    charged.deadline = nullptr;  // dl is out of scope; pricing is unbudgeted
  }
  if (outcome.tier != DispatchTier::kPrimary) {
    OBS_COUNTER_INC("auction.degraded_rounds");
  }
  outcome.dispatch_seconds = Seconds(dispatch_timer.ElapsedSeconds());
  // Reuse the mechanism's own wall-clock measurements so the telemetry
  // matches what the paper-facing tables report.
  OBS_HISTOGRAM_OBSERVE(
      "auction.dispatch_s",
      outcome.dispatch_seconds.value());  // NOLINT-ARIDE(unsafe-unit-cast)
  OBS_COUNTER_ADD("auction.orders_submitted",
                  static_cast<int64_t>(instance.orders->size()));
  OBS_COUNTER_ADD("auction.assignments",
                  static_cast<int64_t>(outcome.dispatch.assignments.size()));

  // FCFS-fallback rounds skip pricing: neither GPri nor DnW is defined for
  // an FCFS dispatch, and a degraded round's goal is just to keep serving.
  if (options.run_pricing && outcome.tier != DispatchTier::kFcfsFallback) {
    OBS_TRACE_SPAN("auction.pricing");
    WallTimer pricing_timer;
    if (kind == MechanismKind::kGreedy ||
        outcome.tier == DispatchTier::kGreedyFallback) {
      // Greedy-fallback rounds price with GPri: DnW needs Rank artifacts
      // that a fallback dispatch does not have.
      outcome.payments =
          GPriPriceAll(charged, outcome.dispatch, pricing_pool);
    } else {
      outcome.payments = DnWPriceAll(charged, outcome.rank_artifacts,
                                     outcome.dispatch, pricing_pool);
    }
    outcome.pricing_seconds = Seconds(pricing_timer.ElapsedSeconds());
    OBS_HISTOGRAM_OBSERVE(
        "auction.pricing_s",
        outcome.pricing_seconds.value());  // NOLINT-ARIDE(unsafe-unit-cast)

    std::unordered_map<OrderId, const Order*> by_id;
    for (const Order& o : *instance.orders) by_id[o.id] = &o;
    Money pay_sum;
    Money fee_sum;
    Money val_sum;
    for (const Payment& p : outcome.payments) {
      const Order* original = by_id.at(p.order);
      pay_sum += p.payment;
      fee_sum += cr * original->bid;
      val_sum += original->valuation;
    }
    const MoneyPerMeter beta_per_m{instance.config.beta_d_per_km / 1000.0};
    const Money driver_payout =
        beta_per_m * outcome.dispatch.total_delta_delivery_m;
    outcome.platform_utility = pay_sum + fee_sum - driver_payout;
    outcome.requester_utility = val_sum - pay_sum - fee_sum;
  }
  return outcome;
}

}  // namespace auctionride
