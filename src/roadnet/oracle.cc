#include "roadnet/oracle.h"

#include "common/check.h"
#include "obs/metrics.h"

namespace auctionride {

DistanceOracle::DistanceOracle(const RoadNetwork* network, Backend backend,
                               double speed_mps)
    : network_(network), backend_(backend), speed_mps_(speed_mps) {
  ARIDE_ACHECK(network != nullptr);
  ARIDE_ACHECK(network->built());
  ARIDE_ACHECK(speed_mps > 0);
  if (backend_ == Backend::kContractionHierarchy) {
    ch_ = std::make_unique<ContractionHierarchy>(network);
  }
  shards_ = std::make_unique<CacheShard[]>(kNumShards);
  // Relative safety margin: the backends sum edge lengths with round-to-
  // nearest adds, and LowerBoundDistance rounds its product once, so each
  // side can differ from the exact real value by a handful of ulps. Shaving
  // 1e-9 (~ 2^-30, millions of ulps) off the ratio keeps the bound strictly
  // admissible against the *rounded* Distance() result.
  lb_scale_ = network->min_detour_ratio() * (1.0 - 1e-9);
}

double DistanceOracle::ComputeUncached(NodeId source, NodeId target) const {
  // Only uncached computes are timed, and only one in 16: cache hits are map
  // lookups that would swamp the histogram, and pooled pricing runs would
  // otherwise contend on the histogram mutex millions of times per bench.
  OBS_SCOPED_TIMER_SAMPLED("roadnet.sp.compute_s", 16);
  if (backend_ == Backend::kContractionHierarchy) {
    std::unique_ptr<ContractionHierarchy::Query> query;
    {
      MutexLock lock(pool_mu_);
      if (!ch_pool_.empty()) {
        query = std::move(ch_pool_.back());
        ch_pool_.pop_back();
      }
    }
    if (query == nullptr) {
      query = std::make_unique<ContractionHierarchy::Query>(ch_.get());
    }
    const double d = query->ShortestDistance(source, target);
    {
      MutexLock lock(pool_mu_);
      ch_pool_.push_back(std::move(query));
    }
    return d;
  }

  std::unique_ptr<DijkstraSearch> search;
  {
    MutexLock lock(pool_mu_);
    if (!dijkstra_pool_.empty()) {
      search = std::move(dijkstra_pool_.back());
      dijkstra_pool_.pop_back();
    }
  }
  if (search == nullptr) search = std::make_unique<DijkstraSearch>(network_);
  const double d = search->ShortestDistance(source, target);
  {
    MutexLock lock(pool_mu_);
    dijkstra_pool_.push_back(std::move(search));
  }
  return d;
}

#if !defined(ARIDE_OBS_DISABLED)
namespace {

// Distance() runs ~10^8 times per bench; even striped registry counters
// are too hot for its fast path, so each thread batches locally and
// flushes every 4096 queries (and at thread exit — the registry is leaked,
// so flushing from a thread_local destructor is safe). Snapshots can lag
// by at most one batch per live thread, noise at these volumes.
struct SpQueryBatch {
  int64_t queries = 0;
  int64_t cache_hits = 0;
  int64_t trivial = 0;
  ~SpQueryBatch() { Flush(); }
  void Flush() {
    if (queries > 0) OBS_COUNTER_ADD("roadnet.sp.queries", queries);
    if (cache_hits > 0) OBS_COUNTER_ADD("roadnet.sp.cache_hits", cache_hits);
    if (trivial > 0) OBS_COUNTER_ADD("roadnet.sp.trivial", trivial);
    queries = 0;
    cache_hits = 0;
    trivial = 0;
  }
};

thread_local SpQueryBatch sp_query_batch;

}  // namespace

#define ARIDE_SP_COUNT_QUERY() \
  do {                         \
    if (++sp_query_batch.queries >= 4096) sp_query_batch.Flush(); \
  } while (0)
#define ARIDE_SP_COUNT_HIT() (++sp_query_batch.cache_hits)
#define ARIDE_SP_COUNT_TRIVIAL() (++sp_query_batch.trivial)
#else
#define ARIDE_SP_COUNT_QUERY() \
  do {                         \
  } while (0)
#define ARIDE_SP_COUNT_HIT() (void)0
#define ARIDE_SP_COUNT_TRIVIAL() (void)0
#endif  // ARIDE_OBS_DISABLED

namespace {
// Per-thread Distance() call count. Plain (non-atomic) thread_local: only
// the owning thread mutates it, so the increment costs about as much as the
// function-entry DCHECKs it sits next to.
thread_local int64_t tl_thread_queries = 0;

inline uint64_t PairKey(NodeId source, NodeId target) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(source)) << 32) |
         static_cast<uint32_t>(target);
}
}  // namespace

int64_t DistanceOracle::ThreadQueryCount() { return tl_thread_queries; }

double DistanceOracle::Distance(NodeId source, NodeId target) const {
  ARIDE_DCHECK(source >= 0 && source < network_->num_nodes());
  ARIDE_DCHECK(target >= 0 && target < network_->num_nodes());
  ++tl_thread_queries;
  // Trivial queries never reach the cache, so counting them in
  // num_queries_ would bias the hit rate downward; they get their own
  // counter and num_queries_ stays hits + computes.
  if (source == target) {
    num_trivial_queries_.fetch_add(1, std::memory_order_relaxed);
    ARIDE_SP_COUNT_TRIVIAL();
    return 0;
  }
  num_queries_.fetch_add(1, std::memory_order_relaxed);
  ARIDE_SP_COUNT_QUERY();

  const uint64_t key = PairKey(source, target);
  CacheShard& shard = shards_[key % kNumShards];
  {
    MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      num_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      ARIDE_SP_COUNT_HIT();
      return it->second;
    }
  }
  const double d = ComputeUncached(source, target);
  {
    MutexLock lock(shard.mu);
    shard.map.emplace(key, d);
  }
  return d;
}

void DistanceOracle::DistanceBatch(std::span<const NodePair> pairs,
                                   std::span<double> out) const {
  ARIDE_ACHECK(pairs.size() == out.size());
  const std::size_t n = pairs.size();
  if (n == 0) return;
  tl_thread_queries += static_cast<int64_t>(n);

  // Reused per-thread scratch: non-trivial pair indices bucketed by cache
  // shard, cache-miss indices per shard, and this batch's freshly computed
  // keys. The last one makes duplicate pairs inside a batch charge a cache
  // hit and reuse the first occurrence's value — exactly what the second of
  // two sequential Distance() calls would do after the first's insert.
  struct BatchScratch {
    std::vector<uint32_t> bucket[kNumShards];
    std::vector<uint32_t> misses[kNumShards];
    std::unordered_map<uint64_t, double> computed;
  };
  thread_local BatchScratch scratch;
  for (auto& b : scratch.bucket) b.clear();
  for (auto& m : scratch.misses) m.clear();
  scratch.computed.clear();

  int64_t trivial = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId source = pairs[i].source;
    const NodeId target = pairs[i].target;
    ARIDE_DCHECK(source >= 0 && source < network_->num_nodes());
    ARIDE_DCHECK(target >= 0 && target < network_->num_nodes());
    if (source == target) {
      out[i] = 0;
      ++trivial;
      ARIDE_SP_COUNT_TRIVIAL();
      continue;
    }
    scratch.bucket[PairKey(source, target) % kNumShards].push_back(
        static_cast<uint32_t>(i));
    ARIDE_SP_COUNT_QUERY();
  }
  if (trivial > 0) {
    num_trivial_queries_.fetch_add(trivial, std::memory_order_relaxed);
  }
  const int64_t nontrivial = static_cast<int64_t>(n) - trivial;
  if (nontrivial > 0) {
    num_queries_.fetch_add(nontrivial, std::memory_order_relaxed);
  }

  // Lookup pass: one lock per touched shard. Pending computes are marked
  // with -1.0, which Distance() can never return (edge lengths are >= 0).
  int64_t hits = 0;
  for (int s = 0; s < kNumShards; ++s) {
    if (scratch.bucket[s].empty()) continue;
    CacheShard& shard = shards_[s];
    MutexLock lock(shard.mu);
    for (const uint32_t i : scratch.bucket[s]) {
      auto it = shard.map.find(PairKey(pairs[i].source, pairs[i].target));
      if (it != shard.map.end()) {
        out[i] = it->second;
        ++hits;
        ARIDE_SP_COUNT_HIT();
      } else {
        out[i] = -1.0;
        scratch.misses[s].push_back(i);
      }
    }
  }

  std::size_t num_misses = 0;
  for (const auto& m : scratch.misses) num_misses += m.size();
  if (num_misses > 0) {
    // All misses in the batch share one pooled backend context.
    std::unique_ptr<ContractionHierarchy::Query> ch_query;
    std::unique_ptr<DijkstraSearch> search;
    {
      MutexLock lock(pool_mu_);
      if (backend_ == Backend::kContractionHierarchy) {
        if (!ch_pool_.empty()) {
          ch_query = std::move(ch_pool_.back());
          ch_pool_.pop_back();
        }
      } else if (!dijkstra_pool_.empty()) {
        search = std::move(dijkstra_pool_.back());
        dijkstra_pool_.pop_back();
      }
    }
    if (backend_ == Backend::kContractionHierarchy) {
      if (ch_query == nullptr) {
        ch_query = std::make_unique<ContractionHierarchy::Query>(ch_.get());
      }
    } else if (search == nullptr) {
      search = std::make_unique<DijkstraSearch>(network_);
    }

    for (int s = 0; s < kNumShards; ++s) {
      if (scratch.misses[s].empty()) continue;
      for (const uint32_t i : scratch.misses[s]) {
        const uint64_t key = PairKey(pairs[i].source, pairs[i].target);
        auto it = scratch.computed.find(key);
        if (it != scratch.computed.end()) {
          out[i] = it->second;
          ++hits;
          ARIDE_SP_COUNT_HIT();
          continue;
        }
        double d;
        {
          // Same 1-in-16 sampling as ComputeUncached, per compute.
          OBS_SCOPED_TIMER_SAMPLED("roadnet.sp.compute_s", 16);
          d = ch_query != nullptr
                  ? ch_query->ShortestDistance(pairs[i].source,
                                               pairs[i].target)
                  : search->ShortestDistance(pairs[i].source,
                                             pairs[i].target);
        }
        out[i] = d;
        scratch.computed.emplace(key, d);
      }
      // Publish this shard's fresh results with one lock. emplace ignores
      // keys another thread raced in first; values are deterministic, so
      // whichever insert wins stores the same double.
      CacheShard& shard = shards_[s];
      MutexLock lock(shard.mu);
      for (const uint32_t i : scratch.misses[s]) {
        shard.map.emplace(PairKey(pairs[i].source, pairs[i].target), out[i]);
      }
    }

    {
      MutexLock lock(pool_mu_);
      if (ch_query != nullptr) ch_pool_.push_back(std::move(ch_query));
      if (search != nullptr) dijkstra_pool_.push_back(std::move(search));
    }
  }
  if (hits > 0) num_cache_hits_.fetch_add(hits, std::memory_order_relaxed);
}

}  // namespace auctionride
